// Property suite for the event core: randomized schedules must execute in
// exact (time, insertion) order under both the binary-heap Scheduler and
// the CalendarQueue, and the two structures must agree item for item.
// Also covers the allocation-free machinery underneath: slot-arena reuse
// under reschedule storms, and schedule_train equivalence with chained
// one-shot scheduling.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace rss::sim {
namespace {

struct SchedulePlan {
  std::uint64_t seed;
  std::size_t events;
  std::int64_t horizon_ns;
};

class RandomScheduleTest : public ::testing::TestWithParam<SchedulePlan> {};

TEST_P(RandomScheduleTest, SchedulerExecutesInTimeThenInsertionOrder) {
  const auto plan = GetParam();
  Rng rng{plan.seed};
  Scheduler s;

  struct Expected {
    Time at;
    std::size_t insertion;
  };
  std::vector<Expected> expected;
  std::vector<std::size_t> observed;
  expected.reserve(plan.events);

  for (std::size_t i = 0; i < plan.events; ++i) {
    const Time at = Time::nanoseconds(static_cast<std::int64_t>(
        rng.next_in(0, static_cast<std::uint64_t>(plan.horizon_ns))));
    expected.push_back({at, i});
    s.schedule_at(at, [&observed, i] { observed.push_back(i); });
  }
  s.run();

  std::stable_sort(expected.begin(), expected.end(),
                   [](const Expected& a, const Expected& b) { return a.at < b.at; });
  ASSERT_EQ(observed.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(observed[i], expected[i].insertion) << "position " << i;
  }
}

TEST_P(RandomScheduleTest, RandomCancellationsNeverFireAndOthersAlwaysDo) {
  const auto plan = GetParam();
  Rng rng{plan.seed ^ 0xABCDEF};
  Scheduler s;
  std::vector<EventId> ids(plan.events);
  std::vector<bool> fired(plan.events, false);
  for (std::size_t i = 0; i < plan.events; ++i) {
    const Time at = Time::nanoseconds(static_cast<std::int64_t>(
        rng.next_in(1, static_cast<std::uint64_t>(plan.horizon_ns))));
    ids[i] = s.schedule_at(at, [&fired, i] { fired[i] = true; });
  }
  std::vector<bool> cancelled(plan.events, false);
  for (std::size_t i = 0; i < plan.events; ++i) {
    if (rng.next_bool(0.4)) {
      cancelled[i] = true;
      EXPECT_TRUE(s.cancel(ids[i]));
    }
  }
  s.run();
  for (std::size_t i = 0; i < plan.events; ++i) {
    EXPECT_EQ(fired[i], !cancelled[i]) << "event " << i;
  }
}

// The per-ACK RTO pattern: cancel + immediately reschedule, thousands of
// times, against both backends. The slot arena must recycle — its size is
// bounded by *simultaneously pending* events, not by scheduling traffic.
TEST_P(RandomScheduleTest, RescheduleStormRecyclesArenaSlots) {
  const auto plan = GetParam();
  for (const auto backend : {QueueBackend::kBinaryHeap, QueueBackend::kCalendarQueue}) {
    Rng rng{plan.seed ^ 0x7777};
    Scheduler s{backend};
    std::uint64_t fired = 0;
    EventId timer{};
    std::size_t peak_pending = 0;
    for (std::size_t i = 0; i < plan.events; ++i) {
      // False when a run_until below already fired the timer — both paths
      // (cancel-then-rearm, fire-then-rearm) occur in this storm.
      if (timer.valid()) (void)s.cancel(timer);
      const Time at = s.now() + Time::nanoseconds(static_cast<std::int64_t>(
                                    rng.next_in(1, 1'000'000)));
      timer = s.schedule_at(at, [&fired] { ++fired; });
      // A little background traffic so the arena holds more than one slot.
      if (rng.next_bool(0.1)) {
        s.schedule_at(at, [&fired] { ++fired; });
      }
      peak_pending = std::max(peak_pending, s.pending());
      if (rng.next_bool(0.3)) s.run_until(at);
    }
    s.run();
    // The storm scheduled ~1.1 * events callbacks; the arena must stay at
    // the high-water mark of pending events, orders of magnitude smaller.
    EXPECT_LE(s.arena_slots(), peak_pending);
    EXPECT_EQ(s.pending(), 0u);
    EXPECT_EQ(s.events_executed(), fired);
  }
}

// schedule_train must be observationally identical to the chained
// self-rescheduling pattern it replaces: same firing times, same now() at
// each firing, same interleaving with independently scheduled events.
TEST_P(RandomScheduleTest, TrainMatchesChainedScheduling) {
  const auto plan = GetParam();
  const auto stride = Time::nanoseconds(std::max<std::int64_t>(plan.horizon_ns / 64, 1));
  const std::uint64_t count = 16;

  struct Firing {
    std::int64_t at;
    int label;
  };
  const auto run_one = [&](bool use_train) {
    std::vector<Firing> log;
    Scheduler s;
    Rng rng{plan.seed ^ 0x1234};
    // Background noise events across the train's span.
    for (std::size_t i = 0; i < plan.events / 4 + 4; ++i) {
      const Time at = Time::nanoseconds(static_cast<std::int64_t>(rng.next_in(
          0, static_cast<std::uint64_t>(stride.nanoseconds_count()) * (count + 1))));
      s.schedule_at(at, [&log, &s] { log.push_back({s.now().nanoseconds_count(), 0}); });
    }
    if (use_train) {
      s.schedule_train(stride, stride, count,
                       [&log, &s] { log.push_back({s.now().nanoseconds_count(), 1}); });
    } else {
      struct Chain {
        Scheduler* s;
        std::vector<Firing>* log;
        Time stride;
        std::uint64_t left;
        void operator()() const {
          log->push_back({s->now().nanoseconds_count(), 1});
          if (left > 1) s->schedule_in(stride, Chain{s, log, stride, left - 1});
        }
      };
      s.schedule_at(stride, Chain{&s, &log, stride, count});
    }
    s.run();
    return log;
  };

  const auto train = run_one(true);
  const auto chain = run_one(false);
  ASSERT_EQ(train.size(), chain.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    EXPECT_EQ(train[i].at, chain[i].at) << "firing " << i;
    EXPECT_EQ(train[i].label, chain[i].label) << "firing " << i;
  }
}

TEST_P(RandomScheduleTest, CalendarQueueAgreesWithHeapOrder) {
  const auto plan = GetParam();
  Rng rng{plan.seed ^ 0x5555};
  CalendarQueue cal;

  std::vector<EventEntry> entries;
  for (std::size_t i = 0; i < plan.events; ++i) {
    const Time at = Time::nanoseconds(static_cast<std::int64_t>(
        rng.next_in(0, static_cast<std::uint64_t>(plan.horizon_ns))));
    const EventEntry entry{at, Time::zero(), i, static_cast<std::uint32_t>(i), 1};
    entries.push_back(entry);
    cal.push(entry);
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const EventEntry& a, const EventEntry& b) {
                     if (a.at != b.at) return a.at < b.at;
                     return a.seq < b.seq;
                   });

  for (std::size_t i = 0; i < entries.size(); ++i) {
    ASSERT_FALSE(cal.empty());
    const auto entry = cal.pop_min();
    EXPECT_EQ(entry.at, entries[i].at) << "position " << i;
    EXPECT_EQ(entry.seq, entries[i].seq) << "position " << i;
    EXPECT_EQ(entry.slot, entries[i].slot) << "position " << i;
  }
  EXPECT_TRUE(cal.empty());
}

TEST_P(RandomScheduleTest, CalendarQueueInterleavedPushPop) {
  // Pops interleaved with pushes (monotone non-decreasing push times after
  // pops, as a simulator produces) must still come out sorted.
  const auto plan = GetParam();
  Rng rng{plan.seed ^ 0x9999};
  CalendarQueue cal;
  Time now = Time::zero();
  std::uint64_t seq = 0;
  Time last_popped = Time::zero();
  std::size_t pops = 0;

  for (std::size_t round = 0; round < plan.events; ++round) {
    const auto burst = rng.next_in(1, 4);
    for (std::uint64_t b = 0; b < burst; ++b) {
      const Time at = now + Time::nanoseconds(static_cast<std::int64_t>(
                                rng.next_in(0, 1'000'000)));
      cal.push(EventEntry{at, Time::zero(), seq++, 0, 1});
    }
    if (!cal.empty() && rng.next_bool(0.7)) {
      const auto entry = cal.pop_min();
      EXPECT_GE(entry.at, last_popped);
      last_popped = entry.at;
      now = entry.at;
      ++pops;
    }
  }
  while (!cal.empty()) {
    const auto entry = cal.pop_min();
    EXPECT_GE(entry.at, last_popped);
    last_popped = entry.at;
    ++pops;
  }
  EXPECT_EQ(pops, seq);
}

INSTANTIATE_TEST_SUITE_P(
    Plans, RandomScheduleTest,
    ::testing::Values(SchedulePlan{1, 100, 1'000},          // dense ties
                      SchedulePlan{2, 1'000, 1'000'000},    // typical
                      SchedulePlan{3, 5'000, 100},          // extreme tie pressure
                      SchedulePlan{4, 2'000, 1'000'000'000},// sparse
                      SchedulePlan{5, 500, 50'000}),
    [](const ::testing::TestParamInfo<SchedulePlan>& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.events);
    });

TEST(CalendarQueueTest, ResizesUnderLoad) {
  CalendarQueue cal{16, Time::microseconds(1)};
  for (std::uint64_t i = 0; i < 1000; ++i) {
    cal.push(EventEntry{Time::nanoseconds(static_cast<std::int64_t>(i * 137 % 100000)),
                        Time::zero(), i, static_cast<std::uint32_t>(i), 1});
  }
  EXPECT_GT(cal.resizes(), 0u);
  EXPECT_GT(cal.day_count(), 16u);
  Time last = Time::zero();
  while (!cal.empty()) {
    const auto entry = cal.pop_min();
    EXPECT_GE(entry.at, last);
    last = entry.at;
  }
}

TEST(CalendarQueueTest, RejectsPastPushAndEmptyPop) {
  CalendarQueue cal;
  cal.push(EventEntry{Time::milliseconds(5), Time::zero(), 1, 0, 1});
  (void)cal.pop_min();
  EXPECT_THROW(cal.push(EventEntry{Time::milliseconds(1), Time::zero(), 2, 0, 1}),
               std::invalid_argument);
  EXPECT_THROW((void)cal.pop_min(), std::logic_error);
}

TEST(CalendarQueueTest, ValidatesConstruction) {
  EXPECT_THROW(CalendarQueue(0, Time::microseconds(1)), std::invalid_argument);
  EXPECT_THROW(CalendarQueue(16, Time::zero()), std::invalid_argument);
}

}  // namespace
}  // namespace rss::sim
