#include "metrics/summary.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace rss::metrics {
namespace {

TEST(SummaryTest, EmptyInputYieldsZeros) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(SummaryTest, SingleValue) {
  const std::array<double, 1> v{5.0};
  const auto s = summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
}

TEST(SummaryTest, KnownStatistics) {
  const std::array<double, 5> v{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_NEAR(s.stddev, 1.5811388300841898, 1e-12);  // sample stddev
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(SummaryTest, UnsortedInputHandled) {
  const std::array<double, 4> v{9.0, 1.0, 7.0, 3.0};
  const auto s = summarize(v);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);  // interpolated between 3 and 7
}

TEST(QuantileSortedTest, InterpolatesLinearly) {
  const std::array<double, 3> v{0.0, 10.0, 20.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.25), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 10.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 20.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 2.0), 20.0);  // clamped
}

TEST(JainFairnessTest, PerfectFairnessIsOne) {
  const std::array<double, 4> v{5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(jain_fairness(v), 1.0);
}

TEST(JainFairnessTest, WorstCaseIsOneOverN) {
  const std::array<double, 4> v{1.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness(v), 0.25);
}

TEST(JainFairnessTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  const std::array<double, 3> zeros{0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness(zeros), 1.0);
}

TEST(JainFairnessTest, IntermediateValue) {
  const std::array<double, 2> v{3.0, 1.0};
  // (4)^2 / (2 * 10) = 0.8
  EXPECT_DOUBLE_EQ(jain_fairness(v), 0.8);
}

TEST(AccumulatorTest, MatchesBatchStatistics) {
  Accumulator acc;
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : v) acc.add(x);
  const auto s = summarize(v);
  EXPECT_EQ(acc.count(), v.size());
  EXPECT_NEAR(acc.mean(), s.mean, 1e-12);
  EXPECT_NEAR(acc.stddev(), s.stddev, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(AccumulatorTest, VarianceOfFewSamples) {
  Accumulator acc;
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);  // n=1: undefined -> 0
}

// --- Degenerate inputs: empty / single-sample / all-equal, locked because
// --- replicate-count studies routinely produce them (a sweep point with one
// --- replicate, a stall column that is identically zero).

TEST(SummaryTest, EmptyInputQuantilesAndExtremesAreZero) {
  const auto s = summarize({});
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.p25, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 0.0);
  EXPECT_DOUBLE_EQ(s.p75, 0.0);
  EXPECT_DOUBLE_EQ(s.p95, 0.0);
}

TEST(SummaryTest, SingleValueAllQuantilesEqualIt) {
  const std::array<double, 1> v{-2.5};
  const auto s = summarize(v);
  EXPECT_DOUBLE_EQ(s.p25, -2.5);
  EXPECT_DOUBLE_EQ(s.p75, -2.5);
  EXPECT_DOUBLE_EQ(s.p95, -2.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(SummaryTest, AllEqualValuesHaveZeroSpread) {
  const std::vector<double> v(257, 6.5);
  const auto s = summarize(v);
  EXPECT_EQ(s.count, 257u);
  EXPECT_DOUBLE_EQ(s.mean, 6.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 6.5);
  EXPECT_DOUBLE_EQ(s.max, 6.5);
  EXPECT_DOUBLE_EQ(s.p25, 6.5);
  EXPECT_DOUBLE_EQ(s.median, 6.5);
  EXPECT_DOUBLE_EQ(s.p95, 6.5);
}

TEST(QuantileSortedTest, SingleElementAndExtremeQs) {
  const std::array<double, 1> one{9.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(one, 0.0), 9.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(one, 0.5), 9.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(one, 1.0), 9.0);
  const std::array<double, 3> three{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(three, 0.0), 1.0);   // exactly min
  EXPECT_DOUBLE_EQ(quantile_sorted(three, 1.0), 3.0);   // exactly max
  EXPECT_DOUBLE_EQ(quantile_sorted(three, -1.0), 1.0);  // clamped, not rejected
  EXPECT_DOUBLE_EQ(quantile_sorted(three, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(quantile_sorted({}, 0.5), 0.0);  // empty -> 0 by contract
}

TEST(AccumulatorTest, AllEqualStreamHasZeroVariance) {
  Accumulator acc;
  for (int i = 0; i < 1000; ++i) acc.add(3.25);
  EXPECT_EQ(acc.count(), 1000u);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.25);
  // Welford's update must not accumulate rounding residue on a constant
  // stream — exact zero, not merely small.
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 3.25);
  EXPECT_DOUBLE_EQ(acc.max(), 3.25);
}

}  // namespace
}  // namespace rss::metrics
