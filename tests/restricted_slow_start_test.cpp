#include "core/restricted_slow_start.hpp"

#include <gtest/gtest.h>

#include "scenario/cc_factories.hpp"
#include "scenario/wan_path.hpp"

namespace rss::core {
namespace {

using namespace rss::sim::literals;
using scenario::WanPath;

/// Mock host with a scriptable IFQ occupancy.
class MockHost final : public tcp::CcHost {
 public:
  double cwnd{2 * 1460.0};
  double ssthresh{1e9};
  std::uint64_t flight{0};
  sim::Time now_v{sim::Time::zero()};
  std::size_t ifq_occ{0};
  std::size_t ifq_cap{100};

  [[nodiscard]] double cwnd_bytes() const override { return cwnd; }
  void set_cwnd_bytes(double c) override { cwnd = c; }
  [[nodiscard]] double ssthresh_bytes() const override { return ssthresh; }
  void set_ssthresh_bytes(double s) override { ssthresh = s; }
  [[nodiscard]] std::uint32_t mss() const override { return 1460; }
  [[nodiscard]] std::uint64_t flight_size_bytes() const override { return flight; }
  [[nodiscard]] sim::Time now() const override { return now_v; }
  [[nodiscard]] std::size_t ifq_occupancy_packets() const override { return ifq_occ; }
  [[nodiscard]] std::size_t ifq_capacity_packets() const override { return ifq_cap; }
  [[nodiscard]] sim::Time srtt() const override { return 60_ms; }
};

TEST(RestrictedSlowStartTest, SetpointIsNinetyPercentOfIfq) {
  MockHost host;
  RestrictedSlowStart rss;
  rss.attach(host);
  EXPECT_DOUBLE_EQ(rss.setpoint_packets(), 90.0);
  EXPECT_EQ(rss.name(), "restricted-slow-start");
}

TEST(RestrictedSlowStartTest, EmptyQueueGrowsAtFullSlowStartRate) {
  MockHost host;
  RestrictedSlowStart rss;
  rss.attach(host);
  host.ifq_occ = 0;  // error = +90: controller saturates at +1 MSS/ACK
  const double before = host.cwnd;
  host.now_v += 1_ms;
  rss.on_ack(1460);
  EXPECT_DOUBLE_EQ(host.cwnd, before + 1460.0);
  EXPECT_DOUBLE_EQ(rss.last_increment_mss(), 1.0);
}

TEST(RestrictedSlowStartTest, NeverExceedsStockSlowStartRate) {
  MockHost host;
  RestrictedSlowStart rss;
  rss.attach(host);
  for (int i = 0; i < 50; ++i) {
    host.now_v += 1_ms;
    const double before = host.cwnd;
    rss.on_ack(1460);
    EXPECT_LE(host.cwnd - before, 1460.0 + 1e-9);
  }
}

TEST(RestrictedSlowStartTest, GrowthStopsNearSetpoint) {
  MockHost host;
  RestrictedSlowStart::Options opt;
  opt.gains = control::PidGains{0.12, 0.0, 0.0};  // P-only for determinism
  RestrictedSlowStart rss{opt};
  rss.attach(host);
  host.ifq_occ = 90;  // exactly at set point: error = 0
  host.now_v += 1_ms;
  const double before = host.cwnd;
  rss.on_ack(1460);
  EXPECT_NEAR(host.cwnd, before, 1.0);
}

TEST(RestrictedSlowStartTest, OvershootTrimsWindow) {
  MockHost host;
  RestrictedSlowStart::Options opt;
  opt.gains = control::PidGains{0.12, 0.0, 0.0};
  RestrictedSlowStart rss{opt};
  rss.attach(host);
  host.cwnd = 100 * 1460.0;
  host.ifq_occ = 100;  // full queue: error = -10 -> negative increment
  host.now_v += 1_ms;
  const double before = host.cwnd;
  rss.on_ack(1460);
  EXPECT_LT(host.cwnd, before);
  EXPECT_GE(host.cwnd, before - 1460.0);  // bounded by -1 MSS/ACK
}

TEST(RestrictedSlowStartTest, TrimCanBeDisabled) {
  MockHost host;
  RestrictedSlowStart::Options opt;
  opt.min_increment_mss = 0.0;
  RestrictedSlowStart rss{opt};
  rss.attach(host);
  host.cwnd = 100 * 1460.0;
  host.ifq_occ = 100;
  host.now_v += 1_ms;
  const double before = host.cwnd;
  rss.on_ack(1460);
  EXPECT_DOUBLE_EQ(host.cwnd, before);
}

TEST(RestrictedSlowStartTest, DelayedAckScalingHalvesIncrement) {
  MockHost host;
  RestrictedSlowStart rss;
  rss.attach(host);
  host.ifq_occ = 0;
  host.now_v += 1_ms;
  const double before = host.cwnd;
  rss.on_ack(2 * 1460);  // delayed ACK covering 2 segments
  // ack_scale = min(2920,1460)/1460 = 1: increment still exactly 1 MSS.
  EXPECT_DOUBLE_EQ(host.cwnd, before + 1460.0);
}

TEST(RestrictedSlowStartTest, CongestionAvoidanceIsStockReno) {
  MockHost host;
  RestrictedSlowStart rss;
  rss.attach(host);
  host.cwnd = 100 * 1460.0;
  host.ssthresh = 50 * 1460.0;  // CA
  host.ifq_occ = 0;
  host.now_v += 1_ms;
  const double before = host.cwnd;
  rss.on_ack(1460);
  EXPECT_NEAR(host.cwnd, before + 1460.0 / 100.0, 0.5);
}

TEST(RestrictedSlowStartTest, LocalCongestionResetsIntegral) {
  MockHost host;
  RestrictedSlowStart::Options opt;
  opt.gains = control::PidGains{0.12, 0.3, 0.0};
  RestrictedSlowStart rss{opt};
  rss.attach(host);
  host.ifq_occ = 88;  // small positive error so the output is unsaturated
  for (int i = 0; i < 20; ++i) {
    host.now_v += 10_ms;
    rss.on_ack(1460);
  }
  EXPECT_GT(rss.pid().integral(), 0.0);
  host.now_v += 1_s;
  EXPECT_TRUE(rss.on_local_congestion());
  EXPECT_DOUBLE_EQ(rss.pid().integral(), 0.0);
}

// ----- End-to-end behaviour on the paper's path -----

TEST(RestrictedSlowStartE2ETest, EliminatesSendStalls) {
  WanPath::Config cfg;
  cfg.sender.trace_stalls = true;
  WanPath wan{cfg, scenario::make_rss_factory()};
  wan.run_bulk_transfer(sim::Time::zero(), 25_s);
  EXPECT_EQ(wan.sender().mib().SendStall, 0u);
}

TEST(RestrictedSlowStartE2ETest, HoldsIfqNearSetpoint) {
  WanPath::Config cfg;
  WanPath wan{cfg, scenario::make_rss_factory()};
  metrics::TimeSeries occupancy{"ifq"};
  wan.simulation().every(50_ms, [&](sim::Time now) {
    occupancy.record(now, static_cast<double>(wan.nic().occupancy_packets()));
    return true;
  });
  wan.run_bulk_transfer(sim::Time::zero(), 20_s);
  // After convergence (last 10 s) occupancy must sit near 90% of 100.
  const double avg = occupancy.time_weighted_mean(10_s, 20_s);
  EXPECT_GT(avg, 60.0);
  EXPECT_LE(avg, 100.0);
  // And never overflow: peak below capacity (no tail drops at the IFQ).
  EXPECT_EQ(wan.nic().ifq().stats().dropped, 0u);
}

TEST(RestrictedSlowStartE2ETest, OutperformsStandardTcpOnPaperPath) {
  auto run = [](const scenario::CcFactory& f) {
    WanPath wan{WanPath::Config{}, f};
    wan.run_bulk_transfer(sim::Time::zero(), 25_s);
    return wan.goodput_mbps(sim::Time::zero(), 25_s);
  };
  const double standard = run(scenario::make_reno_factory());
  const double restricted = run(scenario::make_rss_factory());
  // The paper reports ~40% improvement; require a substantial win without
  // pinning the exact factor.
  EXPECT_GT(restricted, 1.2 * standard);
  EXPECT_LE(restricted, 100.0);
}

TEST(RestrictedSlowStartE2ETest, NearLineRateUtilization) {
  WanPath wan{WanPath::Config{}, scenario::make_rss_factory()};
  wan.run_bulk_transfer(sim::Time::zero(), 25_s);
  EXPECT_GT(wan.goodput_mbps(sim::Time::zero(), 25_s), 80.0);
}

TEST(RestrictedSlowStartE2ETest, SetpointFractionRespected) {
  for (const double frac : {0.5, 0.7, 0.9}) {
    RestrictedSlowStart::Options opt;
    opt.setpoint_fraction = frac;
    WanPath wan{WanPath::Config{}, scenario::make_rss_factory(opt)};
    metrics::TimeSeries occupancy{"ifq"};
    wan.simulation().every(50_ms, [&](sim::Time now) {
      occupancy.record(now, static_cast<double>(wan.nic().occupancy_packets()));
      return true;
    });
    wan.run_bulk_transfer(sim::Time::zero(), 20_s);
    const double avg = occupancy.time_weighted_mean(10_s, 20_s);
    EXPECT_NEAR(avg, frac * 100.0, 30.0) << "setpoint fraction " << frac;
  }
}

}  // namespace
}  // namespace rss::core
