#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/queue.hpp"
#include "scenario/builder.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/dumbbell.hpp"
#include "scenario/presets.hpp"
#include "scenario/topology.hpp"
#include "scenario/wan_path.hpp"

namespace rss::scenario {
namespace {

using namespace rss::sim::literals;
using Code = TopologyError::Code;

/// The thrown TopologyError's code, or nullopt when `fn` doesn't throw it.
template <typename Fn>
std::optional<Code> error_code_of(Fn&& fn) {
  try {
    fn();
  } catch (const TopologyError& e) {
    return e.code();
  }
  return std::nullopt;
}

TopologySpec line_spec(std::size_t nodes) {
  TopologySpec spec;
  for (std::size_t i = 0; i < nodes; ++i) spec.nodes.push_back("n" + std::to_string(i));
  for (std::size_t i = 0; i + 1 < nodes; ++i) {
    LinkSpec l;
    l.a = "n" + std::to_string(i);
    l.b = "n" + std::to_string(i + 1);
    spec.links.push_back(std::move(l));
  }
  return spec;
}

// --- validation -----------------------------------------------------------

TEST(TopologyValidationTest, AcceptsWellFormedSpec) {
  TopologySpec spec = line_spec(3);
  spec.flows.push_back({.src = "n0", .dst = "n2"});
  EXPECT_NO_THROW(validate_topology(spec));
}

TEST(TopologyValidationTest, RejectsEmptyNodeName) {
  TopologySpec spec;
  spec.nodes = {"a", ""};
  EXPECT_EQ(error_code_of([&] { validate_topology(spec); }), Code::kEmptyName);
}

TEST(TopologyValidationTest, RejectsDuplicateNode) {
  TopologySpec spec;
  spec.nodes = {"a", "b", "a"};
  EXPECT_EQ(error_code_of([&] { validate_topology(spec); }), Code::kDuplicateNode);
}

TEST(TopologyValidationTest, RejectsUnknownLinkEndpoint) {
  TopologySpec spec;
  spec.nodes = {"a", "b"};
  spec.links.push_back({.a = "a", .b = "ghost"});
  EXPECT_EQ(error_code_of([&] { validate_topology(spec); }), Code::kUnknownEndpoint);
}

TEST(TopologyValidationTest, RejectsSelfLoopLink) {
  TopologySpec spec;
  spec.nodes = {"a", "b"};
  spec.links.push_back({.a = "a", .b = "a"});
  EXPECT_EQ(error_code_of([&] { validate_topology(spec); }), Code::kSelfLoop);
}

TEST(TopologyValidationTest, RejectsDuplicateLinkEitherOrientation) {
  TopologySpec spec;
  spec.nodes = {"a", "b"};
  spec.links.push_back({.a = "a", .b = "b"});
  spec.links.push_back({.a = "b", .b = "a"});
  EXPECT_EQ(error_code_of([&] { validate_topology(spec); }), Code::kDuplicateLink);
}

TEST(TopologyValidationTest, RejectsUnknownFlowEndpoint) {
  TopologySpec spec = line_spec(2);
  spec.flows.push_back({.src = "n0", .dst = "ghost"});
  EXPECT_EQ(error_code_of([&] { validate_topology(spec); }), Code::kUnknownEndpoint);
}

TEST(TopologyValidationTest, RejectsDuplicateFlowIdSharingAnEndpoint) {
  TopologySpec spec = line_spec(3);
  spec.flows.push_back({.src = "n0", .dst = "n2", .flow_id = 7});
  spec.flows.push_back({.src = "n2", .dst = "n1", .flow_id = 7});  // shares n2
  EXPECT_EQ(error_code_of([&] { validate_topology(spec); }), Code::kDuplicateFlowId);
}

TEST(TopologyValidationTest, AllowsDuplicateFlowIdOnDisjointEndpoints) {
  TopologySpec spec = line_spec(4);
  spec.flows.push_back({.src = "n0", .dst = "n1", .flow_id = 7});
  spec.flows.push_back({.src = "n2", .dst = "n3", .flow_id = 7});
  EXPECT_NO_THROW(validate_topology(spec));
}

TEST(ScenarioBuilderTest, RejectsUnroutableFlow) {
  // Two disconnected islands.
  TopologySpec spec;
  spec.nodes = {"a", "b", "c", "d"};
  spec.links.push_back({.a = "a", .b = "b"});
  spec.links.push_back({.a = "c", .b = "d"});
  spec.flows.push_back({.src = "a", .dst = "d"});
  EXPECT_EQ(
      error_code_of([&] { (void)ScenarioBuilder{spec}.build(make_reno_factory()); }),
      Code::kUnroutableFlow);
}

TEST(ScenarioBuilderTest, RejectsNullFactory) {
  EXPECT_EQ(error_code_of([&] { (void)ScenarioBuilder{line_spec(2)}.build(FlowCcFactory{}); }),
            Code::kNullCcFactory);
  // TopologyError stays catchable as std::invalid_argument for old callers.
  EXPECT_THROW((void)ScenarioBuilder{line_spec(2)}.build(CcFactory{}),
               std::invalid_argument);
}

// --- route computation ----------------------------------------------------

TEST(RouteTableTest, LineTopologyRoutesThroughEachHop) {
  const TopologySpec spec = line_spec(4);
  const RouteTable routes = compute_routes(spec);
  // n0's only device (0) reaches everything.
  for (std::size_t dst = 1; dst < 4; ++dst) EXPECT_EQ(routes.egress(0, dst), 0u);
  // n1: device 0 faces n0, device 1 faces n2.
  EXPECT_EQ(routes.egress(1, 0), 0u);
  EXPECT_EQ(routes.egress(1, 2), 1u);
  EXPECT_EQ(routes.egress(1, 3), 1u);
  EXPECT_EQ(routes.hops(0, 3), 3u);
  EXPECT_EQ(routes.hops(3, 0), 3u);
  EXPECT_EQ(routes.hops(2, 2), 0u);
}

TEST(RouteTableTest, ShortestPathWinsOverLongerOne) {
  // a-b-c chain plus a direct a-c link: a must reach c directly.
  TopologySpec spec;
  spec.nodes = {"a", "b", "c"};
  spec.links.push_back({.a = "a", .b = "b"});
  spec.links.push_back({.a = "b", .b = "c"});
  spec.links.push_back({.a = "a", .b = "c"});
  const RouteTable routes = compute_routes(spec);
  EXPECT_EQ(routes.egress(0, 2), 1u);  // a's second device, the direct a-c link
  EXPECT_EQ(routes.hops(0, 2), 1u);
}

TEST(RouteTableTest, EqualCostTieBreaksByLinkDeclarationOrder) {
  // Diamond: a-b, b-d declared before a-c, c-d. Both a->d paths are two
  // hops; the earlier-declared one (via b) must win deterministically.
  TopologySpec spec;
  spec.nodes = {"a", "b", "c", "d"};
  spec.links.push_back({.a = "a", .b = "b"});
  spec.links.push_back({.a = "b", .b = "d"});
  spec.links.push_back({.a = "a", .b = "c"});
  spec.links.push_back({.a = "c", .b = "d"});
  const RouteTable routes = compute_routes(spec);
  EXPECT_EQ(routes.egress(0, 3), 0u);  // via b (a's device 0)
  EXPECT_EQ(routes.hops(0, 3), 2u);
}

TEST(RouteTableTest, DisconnectedNodesAreUnreachable) {
  TopologySpec spec;
  spec.nodes = {"a", "b", "island"};
  spec.links.push_back({.a = "a", .b = "b"});
  const RouteTable routes = compute_routes(spec);
  EXPECT_FALSE(routes.reachable(0, 2));
  EXPECT_EQ(routes.hops(0, 2), RouteTable::kUnreachable);
}

TEST(ScenarioBuilderTest, InstallsRoutesOnNodes) {
  TopologySpec spec = line_spec(3);
  spec.flows.push_back({.src = "n0", .dst = "n2"});
  auto scenario = ScenarioBuilder{spec}.build(make_reno_factory());
  // Node ids are 1-based spec indices; n1 (id 2) must route n0 (id 1) out
  // of device 0 and n2 (id 3) out of device 1.
  EXPECT_EQ(scenario->node("n1").route(1), std::optional<std::size_t>{0});
  EXPECT_EQ(scenario->node("n1").route(3), std::optional<std::size_t>{1});
  EXPECT_EQ(scenario->node("n0").route(3), std::optional<std::size_t>{0});
}

// --- backend auto-selection ----------------------------------------------

TEST(ScenarioBuilderTest, AutoSelectsBackendFromPendingEventDensity) {
  Dumbbell::Config cfg;
  cfg.flows = Dumbbell::kCalendarQueueFlowThreshold;
  const TopologySpec dense = Dumbbell::make_spec(cfg);
  EXPECT_EQ(ScenarioBuilder::auto_backend(dense, compute_routes(dense)),
            sim::QueueBackend::kCalendarQueue);

  cfg.flows = Dumbbell::kCalendarQueueFlowThreshold - 1;
  const TopologySpec sparse = Dumbbell::make_spec(cfg);
  EXPECT_EQ(ScenarioBuilder::auto_backend(sparse, compute_routes(sparse)),
            sim::QueueBackend::kBinaryHeap);

  // A pinned backend always wins over the estimate.
  TopologySpec pinned = Dumbbell::make_spec(cfg);
  pinned.backend = sim::QueueBackend::kCalendarQueue;
  auto scenario = ScenarioBuilder{pinned}.build(
      uniform_cc(make_reno_factory()));
  EXPECT_EQ(scenario->backend(), sim::QueueBackend::kCalendarQueue);
}

TEST(TopologyTest, EstimatedPendingEventsCountsTimersAndHops) {
  // One flow over a 3-link dumbbell path: 2 timers + 3 serialization
  // trains. This is the unit the crossover threshold is denominated in.
  Dumbbell::Config cfg;
  cfg.flows = 1;
  const TopologySpec spec = Dumbbell::make_spec(cfg);
  EXPECT_EQ(estimated_pending_events(spec, compute_routes(spec)), 5u);
}

// --- scenario handle ------------------------------------------------------

TEST(ScenarioTest, FluentBuilderRunsATransfer) {
  auto scenario = ScenarioBuilder{}
                      .node("a")
                      .node("b")
                      .duplex_link("a", "b", net::DataRate::mbps(100), 30_ms, 100)
                      .flow({.src = "a", .dst = "b", .start = 0_s})
                      .build(make_reno_factory());
  scenario->run_until(3_s);
  EXPECT_GT(scenario->sender(0).bytes_acked(), 0u);
  EXPECT_GT(scenario->goodputs_mbps(0_s, 3_s).at(0), 1.0);
  EXPECT_EQ(scenario->device("a", "b").rate(), net::DataRate::mbps(100));
  EXPECT_THROW((void)scenario->device("a", "ghost"), std::out_of_range);
  EXPECT_THROW((void)scenario->node("ghost"), std::out_of_range);
}

TEST(ScenarioTest, RedQueueDisciplineIsHonoured) {
  TopologySpec spec = line_spec(2);
  spec.links[0].a_dev.qdisc = QueueDiscipline::kRed;
  spec.links[0].a_dev.ifq_packets = 64;
  auto scenario = ScenarioBuilder{spec}.build(make_reno_factory());
  // RED capacity comes from ifq_packets, proving the RedQueue path ran.
  EXPECT_EQ(scenario->device("n0", "n1").ifq_capacity(), 64u);
  EXPECT_NE(dynamic_cast<const net::RedQueue*>(&scenario->device("n0", "n1").ifq()),
            nullptr);
}

// --- preset parity with the pre-redesign hand-wired classes ---------------

/// Byte-for-byte replica of the original hand-wired WanPath constructor
/// (pre-builder), kept as the parity baseline.
struct HandWiredWanPath {
  sim::Simulation sim;
  std::unique_ptr<net::Node> sender_node;
  std::unique_ptr<net::Node> receiver_node;
  net::NetDevice* nic{nullptr};
  std::unique_ptr<net::PointToPointLink> link;
  std::unique_ptr<tcp::TcpReceiver> receiver;
  std::unique_ptr<tcp::TcpSender> sender;

  explicit HandWiredWanPath(const WanPath::Config& cfg) : sim{cfg.seed, cfg.backend} {
    sender_node = std::make_unique<net::Node>(sim, 1, "sender");
    receiver_node = std::make_unique<net::Node>(sim, 2, "receiver");
    nic = &sender_node->add_device(
        cfg.path.nic_rate, std::make_unique<net::DropTailQueue>(cfg.path.ifq_capacity_packets),
        "sender/nic");
    auto& rx_dev = receiver_node->add_device(
        cfg.path.wan_rate, std::make_unique<net::DropTailQueue>(cfg.receiver_ifq_packets),
        "receiver/nic");
    link = std::make_unique<net::PointToPointLink>(sim, cfg.path.one_way_delay);
    link->attach(*nic, rx_dev);
    sender_node->set_route(2, 0);
    receiver_node->set_route(1, 0);

    tcp::TcpReceiver::Options rx_opt = cfg.receiver;
    rx_opt.flow_id = cfg.flow_id;
    rx_opt.peer_node = 1;
    receiver = std::make_unique<tcp::TcpReceiver>(sim, *receiver_node, rx_opt);

    tcp::TcpSender::Options tx_opt = cfg.sender;
    tx_opt.flow_id = cfg.flow_id;
    tx_opt.dst_node = 2;
    tx_opt.mss = cfg.path.mss;
    sender = std::make_unique<tcp::TcpSender>(
        sim, *sender_node, *nic, std::make_unique<tcp::RenoCongestionControl>(), tx_opt);
  }
};

TEST(PresetParityTest, WanPathMatchesHandWiredOriginal) {
  WanPath::Config cfg;
  cfg.enable_web100 = false;  // the replica has no agent; polling doesn't alter dynamics

  HandWiredWanPath original{cfg};
  original.sim.at(0_s, [&] { original.sender->set_unlimited(true); });
  original.sim.run_until(5_s);

  WanPath preset{cfg, make_reno_factory()};
  preset.run_bulk_transfer(0_s, 5_s);

  EXPECT_EQ(preset.sender().bytes_acked(), original.sender->bytes_acked());
  EXPECT_EQ(preset.sender().bytes_sent(), original.sender->bytes_sent());
  EXPECT_EQ(preset.sender().mib().SendStall, original.sender->mib().SendStall);
  EXPECT_EQ(preset.nic().stats().tx_packets, original.nic->stats().tx_packets);
  EXPECT_EQ(preset.goodput_mbps(0_s, 5_s), original.sender->goodput_mbps(0_s, 5_s));
  EXPECT_GT(preset.sender().bytes_acked(), 0u);
}

/// Replica of the original hand-wired Dumbbell (pre-builder).
struct HandWiredDumbbell {
  sim::Simulation sim;
  std::vector<std::unique_ptr<net::Node>> sender_nodes;
  std::vector<std::unique_ptr<net::Node>> receiver_nodes;
  std::unique_ptr<net::Node> left_router;
  std::unique_ptr<net::Node> right_router;
  net::NetDevice* bottleneck{nullptr};
  std::vector<std::unique_ptr<net::PointToPointLink>> links;
  std::vector<std::unique_ptr<tcp::TcpSender>> senders;
  std::vector<std::unique_ptr<tcp::TcpReceiver>> receivers;

  explicit HandWiredDumbbell(const Dumbbell::Config& cfg)
      : sim{cfg.seed, cfg.backend.value_or(sim::QueueBackend::kBinaryHeap)} {
    const auto sender_id = [](std::size_t i) { return 10 + static_cast<std::uint32_t>(i); };
    const auto receiver_id = [](std::size_t i) {
      return 1000 + static_cast<std::uint32_t>(i);
    };
    left_router = std::make_unique<net::Node>(sim, 1, "routerL");
    right_router = std::make_unique<net::Node>(sim, 2, "routerR");
    auto& l_bottleneck = left_router->add_device(
        cfg.bottleneck_rate, std::make_unique<net::DropTailQueue>(cfg.router_queue_packets),
        "routerL/bottleneck");
    auto& r_bottleneck = right_router->add_device(
        cfg.bottleneck_rate, std::make_unique<net::DropTailQueue>(cfg.router_queue_packets),
        "routerR/bottleneck");
    bottleneck = &l_bottleneck;
    links.push_back(std::make_unique<net::PointToPointLink>(sim, cfg.bottleneck_delay));
    links.back()->attach(l_bottleneck, r_bottleneck);

    for (std::size_t i = 0; i < cfg.flows; ++i) {
      auto snode =
          std::make_unique<net::Node>(sim, sender_id(i), "sender" + std::to_string(i));
      auto rnode =
          std::make_unique<net::Node>(sim, receiver_id(i), "receiver" + std::to_string(i));
      auto& s_dev = snode->add_device(
          cfg.access_rate, std::make_unique<net::DropTailQueue>(cfg.sender_ifq_packets));
      auto& l_dev = left_router->add_device(cfg.access_rate,
                                            std::make_unique<net::DropTailQueue>(1000));
      links.push_back(std::make_unique<net::PointToPointLink>(sim, cfg.access_delay));
      links.back()->attach(s_dev, l_dev);
      auto& r_dev = right_router->add_device(cfg.access_rate,
                                             std::make_unique<net::DropTailQueue>(1000));
      auto& d_dev =
          rnode->add_device(cfg.access_rate, std::make_unique<net::DropTailQueue>(1000));
      links.push_back(std::make_unique<net::PointToPointLink>(sim, cfg.access_delay));
      links.back()->attach(r_dev, d_dev);

      const std::size_t l_access_index = left_router->device_count() - 1;
      const std::size_t r_access_index = right_router->device_count() - 1;
      snode->set_default_route(0);
      rnode->set_default_route(0);
      left_router->set_route(receiver_id(i), 0);
      left_router->set_route(sender_id(i), l_access_index);
      right_router->set_route(receiver_id(i), r_access_index);
      right_router->set_route(sender_id(i), 0);

      const auto flow_id = static_cast<std::uint32_t>(i + 1);
      tcp::TcpReceiver::Options rx_opt = cfg.receiver;
      rx_opt.flow_id = flow_id;
      rx_opt.peer_node = sender_id(i);
      receivers.push_back(std::make_unique<tcp::TcpReceiver>(sim, *rnode, rx_opt));
      tcp::TcpSender::Options tx_opt = cfg.sender;
      tx_opt.flow_id = flow_id;
      tx_opt.dst_node = receiver_id(i);
      tx_opt.mss = cfg.mss;
      senders.push_back(std::make_unique<tcp::TcpSender>(
          sim, *snode, s_dev, std::make_unique<tcp::RenoCongestionControl>(), tx_opt));
      sender_nodes.push_back(std::move(snode));
      receiver_nodes.push_back(std::move(rnode));
    }
  }
};

TEST(PresetParityTest, DumbbellMatchesHandWiredOriginal) {
  Dumbbell::Config cfg;
  cfg.flows = 3;
  cfg.router_queue_packets = 50;  // force router-queue contention too

  HandWiredDumbbell original{cfg};
  for (std::size_t i = 0; i < cfg.flows; ++i) {
    tcp::TcpSender& s = *original.senders[i];
    original.sim.at(sim::Time::milliseconds(static_cast<std::int64_t>(100 * i)),
                    [&s] { s.set_unlimited(true); });
  }
  original.sim.run_until(10_s);

  Dumbbell preset{cfg, uniform_cc(make_reno_factory())};
  for (std::size_t i = 0; i < cfg.flows; ++i)
    preset.start_flow(i, sim::Time::milliseconds(static_cast<std::int64_t>(100 * i)));
  preset.simulation().run_until(10_s);

  for (std::size_t i = 0; i < cfg.flows; ++i) {
    EXPECT_EQ(preset.sender(i).bytes_acked(), original.senders[i]->bytes_acked())
        << "flow " << i;
    EXPECT_EQ(preset.sender(i).mib().SendStall, original.senders[i]->mib().SendStall)
        << "flow " << i;
    EXPECT_EQ(preset.sender(i).mib().FastRetran, original.senders[i]->mib().FastRetran)
        << "flow " << i;
    EXPECT_GT(preset.sender(i).bytes_acked(), 0u);
  }
  EXPECT_EQ(preset.bottleneck().ifq().stats().dropped,
            original.bottleneck->ifq().stats().dropped);
  EXPECT_EQ(preset.goodputs_mbps(0_s, 10_s),
            [&] {
              std::vector<double> g;
              for (const auto& s : original.senders) g.push_back(s->goodput_mbps(0_s, 10_s));
              return g;
            }());
}

// --- new presets ----------------------------------------------------------

TEST(ParkingLotTest, CrossTrafficLoadsEveryHop) {
  ParkingLot::Config cfg;
  cfg.hops = 3;
  cfg.hop_delays = {2_ms, 8_ms, 20_ms};  // heterogeneous RTTs
  ParkingLot lot{cfg, uniform_cc(make_reno_factory())};
  EXPECT_EQ(lot.flow_count(), 4u);  // 1 end-to-end + 3 cross
  lot.start_all(0_s);
  lot.simulation().run_until(8_s);

  const auto goodputs = lot.goodputs_mbps(0_s, 8_s);
  for (std::size_t i = 0; i < goodputs.size(); ++i)
    EXPECT_GT(goodputs[i], 1.0) << "flow " << i;
  for (std::size_t h = 0; h < cfg.hops; ++h) {
    EXPECT_EQ(lot.bottleneck(h).rate(), cfg.bottleneck_rate);
    EXPECT_GT(lot.bottleneck(h).stats().tx_packets, 0u) << "hop " << h;
  }
  // The end-to-end flow really crosses every hop: its packets transit all
  // intermediate routers.
  for (std::size_t r = 1; r < cfg.hops; ++r)
    EXPECT_GT(lot.router(r).forwarded_packets(), 0u);
}

TEST(ParkingLotTest, ValidatesConfig) {
  ParkingLot::Config cfg;
  cfg.hops = 0;
  EXPECT_THROW((ParkingLot{cfg, uniform_cc(make_reno_factory())}), std::invalid_argument);
  cfg.hops = 2;
  cfg.hop_delays = {1_ms};  // wrong size
  EXPECT_THROW((ParkingLot{cfg, uniform_cc(make_reno_factory())}), std::invalid_argument);
}

TEST(MultiBottleneckChainTest, StaggeredEntryGivesHeterogeneousPaths) {
  MultiBottleneckChain::Config cfg;
  cfg.flows = 3;
  cfg.hop_rates = {net::DataRate::mbps(100), net::DataRate::mbps(60),
                   net::DataRate::mbps(40)};
  MultiBottleneckChain chain{cfg, uniform_cc(make_reno_factory())};
  EXPECT_EQ(chain.flow_hops(0), 3u);
  EXPECT_EQ(chain.flow_hops(1), 2u);
  EXPECT_EQ(chain.flow_hops(2), 1u);
  for (std::size_t i = 0; i < cfg.flows; ++i) chain.start_flow(i, 0_s);
  chain.simulation().run_until(8_s);

  const auto goodputs = chain.goodputs_mbps(0_s, 8_s);
  double total = 0;
  for (std::size_t i = 0; i < goodputs.size(); ++i) {
    EXPECT_GT(goodputs[i], 1.0) << "flow " << i;
    total += goodputs[i];
  }
  // Everything funnels through the last (40 Mbit/s) hop.
  EXPECT_LE(total, 40.0 + 1.0);
  EXPECT_EQ(chain.bottleneck(2).rate(), net::DataRate::mbps(40));
}

}  // namespace
}  // namespace rss::scenario
