#include "metrics/histogram.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rss::metrics {
namespace {

TEST(HistogramTest, RejectsBadBoundaries) {
  EXPECT_THROW(Histogram{std::vector<double>{}}, std::invalid_argument);
  EXPECT_THROW(Histogram(std::vector<double>{1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram(std::vector<double>{2.0, 1.0}), std::invalid_argument);
}

TEST(HistogramTest, LinearFactoryBuildsEqualWidths) {
  const auto h = Histogram::linear(0.0, 10.0, 5);
  ASSERT_EQ(h.boundaries().size(), 6u);
  EXPECT_DOUBLE_EQ(h.boundaries()[1] - h.boundaries()[0], 2.0);
}

TEST(HistogramTest, ExponentialFactoryGrowsGeometrically) {
  const auto h = Histogram::exponential(1.0, 2.0, 4);
  ASSERT_EQ(h.boundaries().size(), 5u);
  EXPECT_DOUBLE_EQ(h.boundaries().back(), 16.0);
  EXPECT_THROW(Histogram::exponential(0.0, 2.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram::exponential(1.0, 1.0, 3), std::invalid_argument);
}

TEST(HistogramTest, CountsLandInCorrectBuckets) {
  auto h = Histogram::linear(0.0, 10.0, 2);  // [0,5), [5,10)
  h.add(-1.0);                               // underflow
  h.add(2.0);
  h.add(7.0);
  h.add(100.0);  // overflow
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.total_count(), 4u);
}

TEST(HistogramTest, TracksMinMaxMean) {
  auto h = Histogram::linear(0.0, 100.0, 10);
  h.add(10.0);
  h.add(30.0, 2);  // weighted
  EXPECT_DOUBLE_EQ(h.min(), 10.0);
  EXPECT_DOUBLE_EQ(h.max(), 30.0);
  EXPECT_NEAR(h.mean(), (10.0 + 60.0) / 3.0, 1e-12);
  EXPECT_EQ(h.total_count(), 3u);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  auto h = Histogram::linear(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  // Uniform data: median near 50, p90 near 90.
  EXPECT_NEAR(h.quantile(0.5), 50.0, 10.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), h.min());
}

TEST(HistogramTest, QuantileOfEmptyIsZero) {
  const auto h = Histogram::linear(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramTest, ZeroWeightIsIgnored) {
  auto h = Histogram::linear(0.0, 1.0, 2);
  h.add(0.5, 0);
  EXPECT_EQ(h.total_count(), 0u);
}

TEST(HistogramTest, QuantileClampedToExtremesInOutlierBuckets) {
  auto h = Histogram::linear(0.0, 10.0, 2);
  h.add(-5.0);
  h.add(50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.01), -5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 50.0);
}

// --- Degenerate inputs: the shapes lint-adjacent tooling (summary columns
// --- in artifact tables, the stall-duration histograms) actually produces
// --- when a run has zero, one, or all-identical samples.

TEST(HistogramTest, EmptyHistogramReportsZerosEverywhere) {
  const auto h = Histogram::linear(0.0, 1.0, 4);
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  for (const double q : {0.0, 0.25, 0.5, 1.0}) EXPECT_DOUBLE_EQ(h.quantile(q), 0.0);
}

TEST(HistogramTest, SingleSampleEveryQuantileIsThatSample) {
  auto h = Histogram::linear(0.0, 100.0, 10);
  h.add(37.25);
  EXPECT_EQ(h.total_count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 37.25);
  for (const double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 37.25) << "q=" << q;
  }
}

TEST(HistogramTest, AllEqualSamplesCollapseToTheValue) {
  auto h = Histogram::linear(0.0, 100.0, 10);
  for (int i = 0; i < 1000; ++i) h.add(42.0);
  EXPECT_DOUBLE_EQ(h.min(), 42.0);
  EXPECT_DOUBLE_EQ(h.max(), 42.0);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
  // Interpolation within the containing bucket is clamped to the observed
  // extremes, so identical samples must never smear across the bucket.
  for (const double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 42.0) << "q=" << q;
  }
}

TEST(HistogramTest, SingleSampleOnBucketBoundaryLandsInUpperBucket) {
  auto h = Histogram::linear(0.0, 10.0, 2);  // buckets [0,5), [5,10)
  h.add(5.0);
  // counts_: [under, [0,5), [5,10), over]
  EXPECT_EQ(h.counts()[1], 0u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
}

TEST(HistogramTest, QuantileArgumentIsClampedNotRejected) {
  auto h = Histogram::linear(0.0, 10.0, 2);
  h.add(3.0);
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(1.5), h.quantile(1.0));
}

}  // namespace
}  // namespace rss::metrics
