// Cross-traffic robustness demo: the measured bulk flow shares its host
// NIC with a Poisson datagram source ("the rest of the traffic sharing the
// congested link", paper §1). Shows that RSS's controller regulates the
// *combined* IFQ occupancy: the TCP flow cedes bandwidth to the cross
// traffic yet never stalls, while standard TCP stalls repeatedly. Also
// demonstrates the PacketTracer and the Web100 CSV exporter.
//
// Usage: cross_traffic [cross_mbps] (default 20)

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "net/trace.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/wan_path.hpp"
#include "web100/csv_export.hpp"
#include "workload/apps.hpp"

using namespace rss;
using namespace rss::sim::literals;

namespace {

void run(const char* label, const scenario::CcFactory& factory, double cross_mbps,
         bool dump_csv) {
  scenario::WanPath::Config cfg;
  cfg.web100_poll_period = 250_ms;
  scenario::WanPath wan{cfg, factory};

  workload::PoissonPacketSource::Options xopt;
  xopt.dst_node = 2;
  xopt.payload_bytes = 1460;
  xopt.packets_per_second = cross_mbps * 1e6 / 8.0 / 1500.0;
  workload::PoissonPacketSource cross{wan.simulation(), wan.sender_node(), xopt};

  net::PacketTracer tracer;
  tracer.attach(wan.nic());

  const sim::Time horizon = 20_s;
  wan.run_bulk_transfer(sim::Time::zero(), horizon);

  const double tcp_mbps = wan.goodput_mbps(sim::Time::zero(), horizon);
  const double cross_got =
      static_cast<double>(cross.packets_sent()) * 1500.0 * 8.0 / horizon.to_seconds() / 1e6;
  std::printf("%-24s tcp %6.1f Mb/s + cross %5.1f Mb/s  | tcp stalls %4llu, "
              "cross drops %5llu\n",
              label, tcp_mbps, cross_got,
              static_cast<unsigned long long>(wan.sender().mib().SendStall),
              static_cast<unsigned long long>(cross.packets_stalled()));

  if (dump_csv) {
    std::printf("\nWeb100 log of the RSS run (1 s grid):\n");
    web100::export_csv(*wan.agent(), std::cout,
                       {"SendStall", "CurCwnd", "ThruBytesAcked", "SmoothedRTT_ms"},
                       sim::Time::zero(), horizon, 1_s);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double cross_mbps = argc > 1 ? std::atof(argv[1]) : 20.0;
  if (cross_mbps <= 0.0 || cross_mbps >= 100.0) {
    std::fprintf(stderr, "cross_mbps must be in (0, 100)\n");
    return 1;
  }
  std::printf("bulk TCP + %.0f Mb/s Poisson cross traffic through one 100 Mb/s NIC "
              "(IFQ 100)\n\n",
              cross_mbps);
  run("standard TCP", scenario::make_reno_factory(), cross_mbps, false);
  run("restricted slow-start", scenario::make_rss_factory(), cross_mbps, true);
  return 0;
}
