// Declarative-topology tour: the same 2-hop parking lot built twice —
// once from a hand-filled TopologySpec through ScenarioBuilder (showing
// the describe-as-data API), once with the ParkingLot preset — then run
// with an RSS end-to-end flow against Reno cross traffic.

#include <cstdio>

#include "scenario/builder.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/presets.hpp"

using namespace rss;
using namespace rss::sim::literals;

int main() {
  // --- 1. describe the network as data ------------------------------------
  scenario::TopologySpec spec;
  spec.nodes = {"r0", "r1", "r2", "src", "dst", "x0", "y0", "x1", "y1"};

  const auto hop = [&](const char* a, const char* b, sim::Time delay) {
    scenario::LinkSpec l;
    l.a = a;
    l.b = b;
    l.delay = delay;
    l.a_dev = {net::DataRate::mbps(100), 100};  // bottleneck rate, router queue
    l.b_dev = {net::DataRate::mbps(100), 100};
    spec.links.push_back(std::move(l));
  };
  const auto access = [&](const char* host, const char* router) {
    scenario::LinkSpec l;
    l.a = host;
    l.b = router;
    l.delay = 1_ms;
    l.a_dev = {net::DataRate::mbps(100), 100};  // paper-era host NIC
    l.b_dev = {net::DataRate::gbps(1), 1000};
    spec.links.push_back(std::move(l));
  };
  hop("r0", "r1", 10_ms);  // heterogeneous per-hop RTTs
  hop("r1", "r2", 25_ms);
  access("src", "r0");
  access("dst", "r2");
  access("x0", "r0");
  access("y0", "r1");
  access("x1", "r1");
  access("y1", "r2");

  spec.flows.push_back({.src = "src", .dst = "dst", .start = 0_s});  // end-to-end
  spec.flows.push_back({.src = "x0", .dst = "y0", .start = 1_s});    // hop-0 cross
  spec.flows.push_back({.src = "x1", .dst = "y1", .start = 2_s});    // hop-1 cross

  // Flow 0 runs Restricted Slow-Start, the cross traffic standard Reno.
  auto scenario = scenario::ScenarioBuilder{spec}.build(scenario::striped_cc(
      {scenario::make_rss_factory(), scenario::make_reno_factory(),
       scenario::make_reno_factory()}));

  const sim::Time horizon = 20_s;
  scenario->run_until(horizon);

  std::printf("hand-written spec (%zu nodes, %zu links, %s backend):\n",
              spec.nodes.size(), spec.links.size(),
              scenario->backend() == sim::QueueBackend::kCalendarQueue ? "calendar"
                                                                       : "heap");
  const auto goodputs = scenario->goodputs_mbps(0_s, horizon);
  const char* labels[] = {"end-to-end (rss)", "hop-0 cross (reno)", "hop-1 cross (reno)"};
  for (std::size_t i = 0; i < goodputs.size(); ++i)
    std::printf("  %-20s %6.2f Mbit/s  stalls=%llu\n", labels[i], goodputs[i],
                static_cast<unsigned long long>(scenario->sender(i).mib().SendStall));
  std::printf("  hop-0 bottleneck drops: %llu, hop-1: %llu\n",
              static_cast<unsigned long long>(
                  scenario->device("r0", "r1").ifq().stats().dropped),
              static_cast<unsigned long long>(
                  scenario->device("r1", "r2").ifq().stats().dropped));

  // --- 2. the same shape, one preset call ----------------------------------
  scenario::ParkingLot::Config cfg;
  cfg.hops = 2;
  cfg.hop_delays = {10_ms, 25_ms};
  cfg.access_rate = net::DataRate::mbps(100);
  scenario::ParkingLot lot{cfg, scenario::striped_cc({scenario::make_rss_factory(),
                                                      scenario::make_reno_factory(),
                                                      scenario::make_reno_factory()})};
  lot.start_all(0_s);
  lot.simulation().run_until(horizon);
  const auto preset_goodputs = lot.goodputs_mbps(0_s, horizon);
  std::printf("ParkingLot preset: end-to-end %.2f Mbit/s over %zu hops\n",
              preset_goodputs[0], cfg.hops);
  return 0;
}
