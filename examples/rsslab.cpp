// rsslab — command-line experiment driver: run any congestion-control
// variant over a parameterized WAN path and report the Web100 view.
// The "I want to poke at it" front end a released system ships with.
//
// Usage:
//   rsslab [--variant NAME] [--rtt MS] [--ifq PKTS] [--rate MBPS]
//          [--duration S] [--loss P] [--jitter MS] [--cross MBPS]
//          [--seed N] [--csv]
//
//   --variant  tahoe | reno | vegas | limited | restricted | highspeed |
//              highspeed-rss            (default: restricted)
//   --csv      dump the Web100 time series instead of the summary
//
// Examples:
//   rsslab --variant reno --rtt 120 --duration 30
//   rsslab --variant restricted --loss 0.001 --csv > run.csv

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "scenario/cc_factories.hpp"
#include "scenario/wan_path.hpp"
#include "web100/csv_export.hpp"
#include "workload/apps.hpp"

using namespace rss;
using namespace rss::sim::literals;

namespace {

struct Args {
  std::string variant{"restricted"};
  std::int64_t rtt_ms{60};
  std::size_t ifq{100};
  std::uint64_t rate_mbps{100};
  std::int64_t duration_s{25};
  double loss{0.0};
  std::int64_t jitter_ms{0};
  double cross_mbps{0.0};
  std::uint64_t seed{1};
  bool csv{false};
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--variant NAME] [--rtt MS] [--ifq PKTS] [--rate MBPS]\n"
               "          [--duration S] [--loss P] [--jitter MS] [--cross MBPS]\n"
               "          [--seed N] [--csv]\n",
               argv0);
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (++i >= argc) usage(argv[0]);
      return argv[i];
    };
    if (flag == "--variant") {
      a.variant = value();
    } else if (flag == "--rtt") {
      a.rtt_ms = std::atoll(value());
    } else if (flag == "--ifq") {
      a.ifq = static_cast<std::size_t>(std::atoll(value()));
    } else if (flag == "--rate") {
      a.rate_mbps = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (flag == "--duration") {
      a.duration_s = std::atoll(value());
    } else if (flag == "--loss") {
      a.loss = std::atof(value());
    } else if (flag == "--jitter") {
      a.jitter_ms = std::atoll(value());
    } else if (flag == "--cross") {
      a.cross_mbps = std::atof(value());
    } else if (flag == "--seed") {
      a.seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (flag == "--csv") {
      a.csv = true;
    } else {
      usage(argv[0]);
    }
  }
  if (a.rtt_ms <= 0 || a.ifq == 0 || a.rate_mbps == 0 || a.duration_s <= 0 ||
      a.loss < 0.0 || a.loss >= 1.0 || a.jitter_ms < 0 || a.cross_mbps < 0.0) {
    usage(argv[0]);
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  scenario::CcFactory factory;
  try {
    factory = scenario::factory_by_name(args.variant);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  scenario::WanPath::Config cfg;
  cfg.seed = args.seed;
  cfg.path.nic_rate = net::DataRate::mbps(args.rate_mbps);
  cfg.path.ifq_capacity_packets = args.ifq;
  cfg.path.one_way_delay = sim::Time::milliseconds(args.rtt_ms / 2);
  cfg.web100_poll_period = 100_ms;
  scenario::WanPath wan{cfg, factory};

  if (args.loss > 0.0) wan.nic().link()->set_loss_rate(args.loss, sim::Rng{args.seed + 1});
  if (args.jitter_ms > 0) {
    wan.nic().link()->set_jitter(sim::Time::milliseconds(args.jitter_ms),
                                 sim::Rng{args.seed + 2});
  }

  std::unique_ptr<workload::PoissonPacketSource> cross;
  if (args.cross_mbps > 0.0) {
    workload::PoissonPacketSource::Options xopt;
    xopt.dst_node = 2;
    xopt.payload_bytes = 1460;
    xopt.packets_per_second = args.cross_mbps * 1e6 / 8.0 / 1500.0;
    cross = std::make_unique<workload::PoissonPacketSource>(wan.simulation(),
                                                            wan.sender_node(), xopt);
  }

  const sim::Time horizon = sim::Time::seconds(args.duration_s);
  wan.run_bulk_transfer(sim::Time::zero(), horizon);

  if (args.csv) {
    web100::export_csv(*wan.agent(), std::cout, sim::Time::zero(), horizon, 100_ms);
    return 0;
  }

  const auto& mib = wan.sender().mib();
  std::printf("variant            %s\n", args.variant.c_str());
  std::printf("path               %llu Mbit/s, RTT %lld ms, IFQ %zu pkts",
              static_cast<unsigned long long>(args.rate_mbps),
              static_cast<long long>(args.rtt_ms), args.ifq);
  if (args.loss > 0) std::printf(", loss %.4f", args.loss);
  if (args.jitter_ms > 0) std::printf(", jitter %lld ms", static_cast<long long>(args.jitter_ms));
  if (cross) std::printf(", cross %.1f Mbit/s", args.cross_mbps);
  std::printf("\n");
  std::printf("goodput            %.2f Mbit/s over %lld s\n",
              wan.goodput_mbps(sim::Time::zero(), horizon),
              static_cast<long long>(args.duration_s));
  std::printf("send-stalls        %llu\n", static_cast<unsigned long long>(mib.SendStall));
  std::printf("congestion signals %llu (fast-retransmit %llu, timeouts %llu, cwr %llu)\n",
              static_cast<unsigned long long>(mib.CongestionSignals),
              static_cast<unsigned long long>(mib.FastRetran),
              static_cast<unsigned long long>(mib.Timeouts),
              static_cast<unsigned long long>(mib.OtherReductions));
  std::printf("segments out       %llu (%llu retransmitted)\n",
              static_cast<unsigned long long>(mib.PktsOut),
              static_cast<unsigned long long>(mib.PktsRetrans));
  std::printf("max cwnd           %.0f segments\n", mib.MaxCwnd / 1460.0);
  std::printf("smoothed RTT       %lld ms (min %lld ms)\n",
              static_cast<long long>(mib.SmoothedRTT.milliseconds_count()),
              static_cast<long long>(mib.MinRTT.milliseconds_count()));
  return 0;
}
