// PID tuning walkthrough: reproduces §3 of the paper end to end.
//
//  1. Ziegler–Nichols closed-loop tuning against an analytic
//     integrator-with-dead-time plant (the IFQ in miniature),
//  2. the same procedure run simulation-in-the-loop against the full TCP
//     stack on the canonical WAN path,
//  3. the Åström–Hägglund relay experiment as a cross-check,
// and prints the resulting (Kc, Tc) and paper-rule gains for each.

#include <cstdio>

#include "control/plant.hpp"
#include "control/relay_tuner.hpp"
#include "control/ziegler_nichols.hpp"
#include "scenario/tuning.hpp"

using namespace rss;

namespace {

void print_result(const char* label, const control::TuningResult& r) {
  const auto g = r.paper_rule();
  std::printf("%-34s Kc = %7.3f  Tc = %6.3f s   ->  Kp = %6.3f  Ti = %6.3f s  Td = %6.3f s\n",
              label, r.kc, r.tc, g.kp, g.ti, g.td);
}

}  // namespace

int main() {
  std::printf("Ziegler-Nichols tuning (paper rule: Kp=0.33Kc, Ti=0.5Tc, Td=0.33Tc)\n\n");

  // 1. Analytic plant: integrator with 0.25 s dead time. Theory predicts
  //    Kc = pi/(2 K L) ~ 6.28 and Tc = 4 L = 1 s.
  {
    const control::ZieglerNicholsTuner tuner;
    const auto result = tuner.tune([](double kp) {
      control::IntegratorPlant plant{1.0, 0.25};
      return control::run_p_control_experiment(plant, kp, 1.0, 60.0, 0.005);
    });
    if (result) print_result("analytic integrator+deadtime:", *result);
  }

  // 2. Simulation in the loop: the real plant is the NIC IFQ driven by the
  //    full TCP state machine.
  {
    scenario::TuneOptions opt;
    opt.duration = sim::Time::seconds(15);
    const auto result = scenario::tune_restricted_slow_start(opt);
    if (result) {
      print_result("TCP-in-the-loop (WAN path):", *result);
    } else {
      std::printf("TCP-in-the-loop: no sustained oscillation found\n");
    }
  }

  // 3. Relay cross-check on the analytic plant.
  {
    control::RelayTuner::Options opt;
    opt.relay_amplitude = 1.0;
    const control::RelayTuner tuner{opt};
    const auto result = tuner.tune([](const std::function<double(double)>& relay) {
      control::IntegratorPlant plant{1.0, 0.25};
      std::vector<control::ResponseSample> resp;
      double y = 0.0;
      const double dt = 0.002;
      for (double t = 0.0; t < 40.0; t += dt) {
        y = plant.step(relay(1.0 - y), dt);
        resp.push_back({t + dt, y});
      }
      return resp;
    });
    if (result) print_result("relay (Astrom-Hagglund) check:", *result);
  }

  return 0;
}
