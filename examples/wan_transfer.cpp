// WAN transfer deep-dive: reproduces the paper's measurement methodology.
// Runs a single flow on the ANL<->LBNL path with Web100 polling and emits
// CSV time series (cwnd, IFQ occupancy, cumulative send-stalls, goodput)
// suitable for gnuplot, for either variant.
//
// Usage:  wan_transfer [standard|limited|restricted] [seconds]
// Output: CSV on stdout.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "metrics/csv.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/wan_path.hpp"

using namespace rss;
using namespace rss::sim::literals;

int main(int argc, char** argv) {
  const std::string variant = argc > 1 ? argv[1] : "restricted";
  const int seconds = argc > 2 ? std::atoi(argv[2]) : 25;
  if (seconds <= 0) {
    std::fprintf(stderr, "bad duration\n");
    return 1;
  }

  scenario::CcFactory factory;
  if (variant == "standard") {
    factory = scenario::make_reno_factory();
  } else if (variant == "limited") {
    factory = scenario::make_limited_slow_start_factory();
  } else if (variant == "restricted") {
    factory = scenario::make_rss_factory();
  } else {
    std::fprintf(stderr, "usage: %s [standard|limited|restricted] [seconds]\n", argv[0]);
    return 1;
  }

  scenario::WanPath::Config cfg;
  cfg.web100_poll_period = 100_ms;
  cfg.sender.trace_cwnd = true;
  scenario::WanPath wan{cfg, factory};

  // Sample IFQ occupancy alongside the Web100 poller.
  metrics::TimeSeries ifq{"ifq"};
  wan.simulation().every(100_ms, [&](sim::Time now) {
    ifq.record(now, static_cast<double>(wan.nic().occupancy_packets()));
    return true;
  });

  const sim::Time horizon = sim::Time::seconds(seconds);
  wan.run_bulk_transfer(sim::Time::zero(), horizon);

  metrics::CsvWriter csv{std::cout};
  csv.header({"t_s", "cwnd_pkts", "ifq_pkts", "send_stalls", "acked_mbytes", "srtt_ms"});
  const auto* agent = wan.agent();
  const auto& stalls = agent->series("SendStall");
  const auto& acked = agent->series("ThruBytesAcked");
  const auto& cwnd = agent->series("CurCwnd");
  const auto& srtt = agent->series("SmoothedRTT_ms");
  for (sim::Time t = sim::Time::zero(); t <= horizon; t += 100_ms) {
    csv.field(t.to_seconds())
        .field(cwnd.value_at(t) / 1460.0)
        .field(ifq.value_at(t))
        .field(stalls.value_at(t))
        .field(acked.value_at(t) / 1e6)
        .field(srtt.value_at(t))
        .endrow();
  }

  std::fprintf(stderr, "%s: goodput %.1f Mbit/s, %llu send-stalls over %d s\n",
               variant.c_str(), wan.goodput_mbps(sim::Time::zero(), horizon),
               static_cast<unsigned long long>(wan.sender().mib().SendStall), seconds);
  return 0;
}
