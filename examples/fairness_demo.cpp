// Fairness demo: four flows share a 100 Mbit/s dumbbell bottleneck, with
// the congestion-control mix chosen on the command line. Shows that a
// Restricted Slow-Start flow coexists with standard TCP ("network
// friendly", the paper's stated goal) — it restricts only its own startup.
//
// Usage: fairness_demo [reno|rss|mixed]   (default: mixed)

#include <cstdio>
#include <memory>
#include <string>

#include "metrics/summary.hpp"
#include "scenario/dumbbell.hpp"
#include "scenario/cc_factories.hpp"

using namespace rss;
using namespace rss::sim::literals;

int main(int argc, char** argv) {
  const std::string mix = argc > 1 ? argv[1] : "mixed";

  scenario::Dumbbell::Config cfg;
  cfg.flows = 4;
  cfg.router_queue_packets = 100;

  scenario::Dumbbell::PerFlowCcFactory factory;
  if (mix == "reno") {
    factory = [](std::size_t) -> std::unique_ptr<tcp::CongestionControl> {
      return std::make_unique<tcp::RenoCongestionControl>();
    };
  } else if (mix == "rss") {
    factory = [](std::size_t) -> std::unique_ptr<tcp::CongestionControl> {
      return std::make_unique<core::RestrictedSlowStart>();
    };
  } else if (mix == "mixed") {
    factory = [](std::size_t i) -> std::unique_ptr<tcp::CongestionControl> {
      if (i % 2 == 0) return std::make_unique<core::RestrictedSlowStart>();
      return std::make_unique<tcp::RenoCongestionControl>();
    };
  } else {
    std::fprintf(stderr, "usage: %s [reno|rss|mixed]\n", argv[0]);
    return 1;
  }

  scenario::Dumbbell d{cfg, factory};
  // Stagger the starts: late arrivals must be able to claim their share.
  for (std::size_t i = 0; i < cfg.flows; ++i)
    d.start_flow(i, sim::Time::seconds(static_cast<std::int64_t>(i) * 2));

  const sim::Time horizon = 40_s;
  d.simulation().run_until(horizon);

  std::printf("dumbbell: 4 flows, staggered starts, %s mix, %.0f s\n\n", mix.c_str(),
              horizon.to_seconds());
  std::printf("%-6s %-24s %12s %12s %10s\n", "flow", "algorithm", "goodput Mb/s",
              "retransmits", "stalls");

  // Steady-state window: after the last flow has been up for a while.
  const auto goodputs = d.goodputs_mbps(10_s, horizon);
  for (std::size_t i = 0; i < cfg.flows; ++i) {
    const auto& s = d.sender(i);
    // goodputs_mbps uses total acked bytes; rescale to the window handled
    // inside; print as reported.
    std::printf("%-6zu %-24s %12.1f %12llu %10llu\n", i,
                std::string{s.congestion_control().name()}.c_str(), goodputs[i],
                static_cast<unsigned long long>(s.mib().PktsRetrans),
                static_cast<unsigned long long>(s.mib().SendStall));
  }

  std::printf("\nJain fairness index: %.3f (1.0 = perfectly fair)\n",
              metrics::jain_fairness(goodputs));
  std::printf("bottleneck drops: %llu\n",
              static_cast<unsigned long long>(d.bottleneck().ifq().stats().dropped));
  return 0;
}
