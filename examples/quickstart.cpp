// Quickstart: run one bulk TCP transfer over the paper's canonical path
// (100 Mbps NIC, 100-packet IFQ, 60 ms RTT) with standard TCP and with
// Restricted Slow-Start, and print what Web100 would have shown you.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "scenario/cc_factories.hpp"
#include "scenario/wan_path.hpp"

using namespace rss;
using namespace rss::sim::literals;

namespace {

void run_variant(const char* label, const scenario::CcFactory& factory) {
  scenario::WanPath wan{scenario::WanPath::Config{}, factory};
  const sim::Time horizon = 25_s;
  wan.run_bulk_transfer(sim::Time::zero(), horizon);

  const auto& mib = wan.sender().mib();
  std::printf("%-24s  goodput %6.1f Mbit/s  send-stalls %3llu  timeouts %2llu  "
              "retrans %4llu  max-cwnd %5.0f pkts\n",
              label, wan.goodput_mbps(sim::Time::zero(), horizon),
              static_cast<unsigned long long>(mib.SendStall),
              static_cast<unsigned long long>(mib.Timeouts),
              static_cast<unsigned long long>(mib.PktsRetrans),
              mib.MaxCwnd / static_cast<double>(wan.sender().mss()));
}

}  // namespace

int main() {
  std::printf("Restricted Slow-Start quickstart — ANL<->LBNL path, 25 s bulk transfer\n");
  std::printf("(100 Mbit/s NIC, IFQ 100 packets, RTT 60 ms, MSS 1460)\n\n");

  run_variant("standard TCP (Reno)", scenario::make_reno_factory());
  run_variant("limited slow-start", scenario::make_limited_slow_start_factory());
  run_variant("restricted slow-start", scenario::make_rss_factory());

  std::printf("\nThe standard stack stalls its own interface queue during slow-start\n"
              "and halves cwnd each time; RSS paces growth with a PID controller on\n"
              "IFQ occupancy (set point 90%%) and avoids the stalls entirely.\n");
  return 0;
}
