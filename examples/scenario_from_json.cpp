// Scenarios from files, at the library level: the whole study below —
// topology, per-flow congestion control, run window, and a two-axis sweep —
// is the JSON string, not C++. Point rss_scenario at a .json file for the
// command-line version of the same thing; this example shows the three
// API calls underneath it (json_parse / expand_scenario_spec /
// run_spec_text) plus the typed error you get from a malformed spec.
//
// Build: part of the default build.  Run: ./build/scenario_from_json

#include <cstdio>
#include <iostream>

#include "scenario/spec_cli.hpp"
#include "scenario/spec_io.hpp"

namespace spec = rss::scenario::spec;

namespace {

constexpr const char* kStudy = R"({
  "name": "ifq-depth-mini-study",
  "nodes": ["host", "far"],
  "links": [
    {"a": "host", "b": "far", "delay": "30ms",
     "a_dev": {"rate": "100mbps", "ifq_packets": 100, "name": "host/nic"},
     "b_dev": {"rate": "1gbps"}}
  ],
  "flows": [
    {"src": "host", "dst": "far", "start": "0s", "cc": "restricted-slow-start"}
  ],
  "run": {"duration": "10s"},
  "sweep": {
    "axes": [
      {"field": "links[0].a_dev.ifq_packets", "values": [50, 100, 200]}
    ]
  }
})";

}  // namespace

int main() {
  // One call: parse, expand the sweep, build every point through
  // ScenarioBuilder, run them across a thread pool, tabulate.
  const rss::metrics::Table table = spec::run_spec_text(kStudy);
  table.write_csv(std::cout);

  // The sweep machinery is also usable piecewise — here, count the points
  // without running anything.
  const auto points = spec::expand_scenario_spec(kStudy);
  std::printf("\n%zu sweep points over %zu nodes\n", points.size(),
              points.front().spec.topology.nodes.size());

  // Malformed specs fail with a typed, located error, not a crash.
  try {
    (void)spec::parse_scenario_spec(R"({"nodes": ["a"], "link": []})");
  } catch (const spec::SpecError& e) {
    std::printf("typo caught: %s\n", e.what());
  }
  return 0;
}
